#!/bin/sh
# Microbenchmark sweep: runs the Go benchmarks of the SAT kernel and
# the ECO engine with -benchmem, 5 repetitions each, and converts the
# raw `go test -bench` output into BENCH_sat.json (schema
# ecobench/microbench@v1) for trend tooling. The raw text is kept in
# BENCH_sat.txt so benchstat can diff two runs:
#
#   ./scripts/bench.sh && mv BENCH_sat.txt old.txt
#   ... change code ...
#   ./scripts/bench.sh && benchstat old.txt BENCH_sat.txt
#
# Also records the Table-1 sweep at intra-solve parallelism 1 and 4
# (BENCH_table1_p1.json / BENCH_table1_p4.json, additive fields on
# ecobench/table1@v1) so the serial/parallel wall-clock ratio is
# tracked alongside the microbenchmarks, plus a preprocessing run
# (BENCH_table1_prep.json) whose cells carry the prep_* counters for
# before/after comparison against the p1 baseline, a restart-warm run
# against a persisted solve-cache file (BENCH_table1_persist.json,
# experiment E14), a simulation-layer run (BENCH_table1_sim.json,
# experiment E15) whose cells carry the sim_* counters for elision and
# pruning rates against the p1 baseline, and a DAG-aware rewriting run
# (BENCH_table1_rewrite.json, experiment E16) whose cells carry the
# rewrite_* counters for miter node reduction against the p1 baseline.
#
# Run from the repository root. Non-gating: failures here never block
# verify.sh.
set -eu

COUNT="${BENCH_COUNT:-5}"
OUT_TXT="${BENCH_OUT:-BENCH_sat.txt}"
OUT_JSON="${BENCH_JSON:-BENCH_sat.json}"

go test -bench=. -benchmem -count="$COUNT" -run '^$' \
	./internal/sat ./internal/eco | tee "$OUT_TXT"

# Convert "BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op" lines
# into JSON, averaging over the repetitions of each benchmark.
awk -v count="$COUNT" '
BEGIN {
	n = 0
}
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!(name in seen)) {
		seen[name] = 1
		order[n++] = name
	}
	runs[name]++
	ns[name] += $3
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op")      bytes[name]  += $i
		if ($(i+1) == "allocs/op") allocs[name] += $i
	}
}
END {
	printf "{\n"
	printf "  \"schema\": \"ecobench/microbench@v1\",\n"
	printf "  \"count\": %d,\n", count
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.1f, \"bytes_per_op\": %.1f, \"allocs_per_op\": %.1f}%s\n", \
			name, runs[name], ns[name]/runs[name], \
			bytes[name]/runs[name], allocs[name]/runs[name], \
			(i < n-1 ? "," : "")
	}
	printf "  ]\n"
	printf "}\n"
}' "$OUT_TXT" > "$OUT_JSON"

echo "wrote $OUT_TXT and $OUT_JSON"

# Table-1 sweep, serial vs parallel engine. Per-cell timeout keeps a
# pathological unit from stalling the sweep; the portfolio counters in
# the p4 report show which member configurations won the races.
T1_TIMEOUT="${BENCH_T1_TIMEOUT:-60s}"
go run ./cmd/ecobench -mode table1 -p 1 -timeout "$T1_TIMEOUT" \
	-json BENCH_table1_p1.json >/dev/null
go run ./cmd/ecobench -mode table1 -p 4 -timeout "$T1_TIMEOUT" \
	-json BENCH_table1_p4.json >/dev/null
go run ./cmd/ecobench -mode table1 -p 1 -prep -timeout "$T1_TIMEOUT" \
	-json BENCH_table1_prep.json >/dev/null
go run ./cmd/ecobench -mode table1 -p 1 -sim -timeout "$T1_TIMEOUT" \
	-json BENCH_table1_sim.json >/dev/null
go run ./cmd/ecobench -mode table1 -p 1 -rewrite -timeout "$T1_TIMEOUT" \
	-json BENCH_table1_rewrite.json >/dev/null
echo "wrote BENCH_table1_p1.json, BENCH_table1_p4.json, BENCH_table1_prep.json, BENCH_table1_sim.json and BENCH_table1_rewrite.json"

# Persistence: the suite twice in two separate processes sharing only
# a solve-cache file — the restart-warm run (experiment E14) is what
# gets recorded.
persist_cache=$(mktemp)
rm -f "$persist_cache"
go run ./cmd/ecobench -mode table1 -p 1 -timeout "$T1_TIMEOUT" \
	-cache-file "$persist_cache" >/dev/null
go run ./cmd/ecobench -mode table1 -p 1 -timeout "$T1_TIMEOUT" \
	-cache-file "$persist_cache" -json BENCH_table1_persist.json >/dev/null
rm -f "$persist_cache"
echo "wrote BENCH_table1_persist.json"
