#!/bin/sh
# Crash-safety smoke test for the ecod persistence layer: run a daemon
# with -data-dir, finish a job, kill -9 the process (no drain, no
# fsync of the async tail), restart on the same directory, and assert
# the job history and result cache survived — then tear the final log
# record and assert the daemon recovers the intact prefix and keeps
# serving.
#
# Run from the repository root. Gating when invoked via
# `SMOKE=1 scripts/verify.sh`.
set -eu

workdir=$(mktemp -d)
ECOD="$workdir/ecod"
data="$workdir/data"
trap 'kill -9 "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$ECOD" ./cmd/ecod

# start_daemon <logfile>: launch on a fresh random port against $data,
# wait for /healthz, set $server_pid and $base.
start_daemon() {
	log=$1
	attempt=0
	while :; do
		port=$((20000 + ($$ + attempt * 37) % 10000 + attempt))
		"$ECOD" serve -addr "127.0.0.1:$port" -workers 2 -queue 8 \
			-data-dir "$data" 2>"$log" &
		server_pid=$!
		for _ in $(seq 1 50); do
			if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
				base="http://127.0.0.1:$port"
				return 0
			fi
			kill -0 "$server_pid" 2>/dev/null || break
			sleep 0.1
		done
		kill "$server_pid" 2>/dev/null || true
		wait "$server_pid" 2>/dev/null || true
		attempt=$((attempt + 1))
		[ "$attempt" -lt 3 ] || { echo "FAIL: server did not come up"; cat "$log"; exit 1; }
	done
}

# --- Daemon 1: do real work, then die hard. -------------------------
start_daemon "$workdir/ecod1.log"
echo "ecod[1] up on $base (pid $server_pid)"

"$ECOD" submit -server "$base" -unit unit1 -wait >"$workdir/result.json"
grep -q '"state": "done"' "$workdir/result.json" || {
	echo "FAIL: job did not finish done"; cat "$workdir/result.json"; exit 1; }
grep -q '"verified": true' "$workdir/result.json" || {
	echo "FAIL: patch not verified"; cat "$workdir/result.json"; exit 1; }
job_id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/result.json" | head -1)
[ -n "$job_id" ] || { echo "FAIL: no job id parsed"; cat "$workdir/result.json"; exit 1; }

# A second job submitted without -wait right before the kill: depending
# on timing it dies queued/running and must recover as failed, or it
# finishes and must survive as done. Either way it must be in the
# restored history with a terminal state.
midrun_id=$("$ECOD" submit -server "$base" -unit unit2 -name midrun)

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "ecod[1] killed -9"
[ -n "$(ls "$data"/seg-*.log 2>/dev/null)" ] || {
	echo "FAIL: no log segments written"; ls -la "$data"; exit 1; }

# --- Daemon 2: replay, serve history, hit the persisted cache. ------
start_daemon "$workdir/ecod2.log"
echo "ecod[2] up on $base (pid $server_pid)"

"$ECOD" status -server "$base" "$job_id" >"$workdir/status.json"
grep -q '"state": "done"' "$workdir/status.json" || {
	echo "FAIL: finished job not restored done"; cat "$workdir/status.json"; exit 1; }
grep -q '"patch"' "$workdir/status.json" || {
	echo "FAIL: restored job lost its result"; cat "$workdir/status.json"; exit 1; }

"$ECOD" status -server "$base" "$midrun_id" >"$workdir/midrun.json"
grep -qE '"state": "(done|failed)"' "$workdir/midrun.json" || {
	echo "FAIL: mid-run job not restored terminal"; cat "$workdir/midrun.json"; exit 1; }
if grep -q '"state": "failed"' "$workdir/midrun.json"; then
	grep -q '"recovered": true' "$workdir/midrun.json" || {
		echo "FAIL: interrupted job not marked recovered"; cat "$workdir/midrun.json"; exit 1; }
fi

"$ECOD" list -server "$base" -state done >"$workdir/list.txt"
grep -q "$job_id" "$workdir/list.txt" || {
	echo "FAIL: finished job not listable after restart"; cat "$workdir/list.txt"; exit 1; }

# Duplicate re-submit of the finished request: served from the
# persisted result cache, pointing at the original job.
"$ECOD" submit -server "$base" -unit unit1 -wait >"$workdir/result_dup.json"
grep -q '"state": "done"' "$workdir/result_dup.json" || {
	echo "FAIL: duplicate did not finish done"; cat "$workdir/result_dup.json"; exit 1; }
grep -q "\"dedup_of\": \"$job_id\"" "$workdir/result_dup.json" || {
	echo "FAIL: duplicate not deduped to the restored job"; cat "$workdir/result_dup.json"; exit 1; }

"$ECOD" metrics -server "$base" >"$workdir/metrics2.txt"
grep -q '^ecod_cache_hits_total 1$' "$workdir/metrics2.txt" || {
	echo "FAIL: duplicate not served from the persisted cache"; cat "$workdir/metrics2.txt"; exit 1; }
grep -qE '^ecod_persist_replayed_total [1-9]' "$workdir/metrics2.txt" || {
	echo "FAIL: replay counter stayed zero"; cat "$workdir/metrics2.txt"; exit 1; }

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true

# --- Daemon 3: torn final record. -----------------------------------
# Append garbage to the newest segment — the torn tail a crash mid-
# write leaves. Recovery must count it, truncate to the intact prefix,
# and keep serving.
newest=$(ls "$data"/seg-*.log | tail -1)
printf '\336\255\276\357\001' >>"$newest"

start_daemon "$workdir/ecod3.log"
echo "ecod[3] up on $base (pid $server_pid)"

"$ECOD" metrics -server "$base" >"$workdir/metrics3.txt"
grep -q '^ecod_persist_torn_tail_total 1$' "$workdir/metrics3.txt" || {
	echo "FAIL: torn tail not detected"; cat "$workdir/metrics3.txt"; exit 1; }
"$ECOD" status -server "$base" "$job_id" >"$workdir/status3.json"
grep -q '"state": "done"' "$workdir/status3.json" || {
	echo "FAIL: history lost after torn-tail recovery"; cat "$workdir/status3.json"; exit 1; }
"$ECOD" submit -server "$base" -unit unit3 -wait >"$workdir/result3.json"
grep -q '"state": "done"' "$workdir/result3.json" || {
	echo "FAIL: daemon not serving after torn-tail recovery"; cat "$workdir/result3.json"; exit 1; }

kill -TERM "$server_pid"
wait "$server_pid" || { echo "FAIL: non-zero exit on drain"; exit 1; }

echo "PASS: ecod persistence smoke test"
