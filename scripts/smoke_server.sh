#!/bin/sh
# End-to-end smoke test for the ecod daemon: start it on a random
# port, submit a benchmark-suite instance over HTTP, wait for the
# solve, check the metrics surface saw real solver work, and shut the
# daemon down cleanly via SIGTERM (graceful drain).
#
# Run from the repository root. Gating when invoked via
# `SMOKE=1 scripts/verify.sh`.
set -eu

workdir=$(mktemp -d)
ECOD="$workdir/ecod"
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$ECOD" ./cmd/ecod

# Random ephemeral port; retry a few times in case of a collision.
attempt=0
while :; do
	port=$((20000 + $$ % 10000 + attempt))
	"$ECOD" serve -addr "127.0.0.1:$port" -workers 2 -cpu-slots 2 -queue 8 \
		-results-dir "$workdir/results" 2>"$workdir/ecod.log" &
	server_pid=$!
	for _ in $(seq 1 50); do
		if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
			break 2
		fi
		kill -0 "$server_pid" 2>/dev/null || break
		sleep 0.1
	done
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true
	attempt=$((attempt + 1))
	[ "$attempt" -lt 3 ] || { echo "FAIL: server did not come up"; cat "$workdir/ecod.log"; exit 1; }
done
base="http://127.0.0.1:$port"
echo "ecod up on $base (pid $server_pid)"

# Submit unit1 (C17-class, fast) and poll it to completion.
"$ECOD" submit -server "$base" -unit unit1 -wait >"$workdir/result.json"
grep -q '"state": "done"' "$workdir/result.json" || {
	echo "FAIL: job did not finish done"; cat "$workdir/result.json"; exit 1; }
grep -q '"verified": true' "$workdir/result.json" || {
	echo "FAIL: patch not verified"; cat "$workdir/result.json"; exit 1; }

# Same instance with intra-solve parallelism: the job takes both CPU
# slots, races the SAT portfolio, and must still verify.
"$ECOD" submit -server "$base" -unit unit1 -p 2 -name unit1-p2 -wait \
	>"$workdir/result_p2.json"
grep -q '"state": "done"' "$workdir/result_p2.json" || {
	echo "FAIL: parallel job did not finish done"; cat "$workdir/result_p2.json"; exit 1; }
grep -q '"verified": true' "$workdir/result_p2.json" || {
	echo "FAIL: parallel patch not verified"; cat "$workdir/result_p2.json"; exit 1; }

# Duplicate submit: the exact same request again (same unit, same
# options) must be served instantly from the daemon's content-
# addressed result cache — state done with a verified result, and
# ecod_cache_hits_total incremented.
"$ECOD" submit -server "$base" -unit unit1 -wait >"$workdir/result_dup.json"
grep -q '"state": "done"' "$workdir/result_dup.json" || {
	echo "FAIL: duplicate job did not finish done"; cat "$workdir/result_dup.json"; exit 1; }
grep -q '"verified": true' "$workdir/result_dup.json" || {
	echo "FAIL: duplicate result not verified"; cat "$workdir/result_dup.json"; exit 1; }
grep -q '"dedup_of"' "$workdir/result_dup.json" || {
	echo "FAIL: duplicate not marked dedup_of"; cat "$workdir/result_dup.json"; exit 1; }

# The metrics surface must show the finished jobs, nonzero solver
# counters from the real solves, the CPU-slot gauge, and exactly one
# result-cache hit from the duplicate submit.
"$ECOD" metrics -server "$base" >"$workdir/metrics.txt"
grep -q 'ecod_jobs_finished_total{state="done"} 3' "$workdir/metrics.txt" || {
	echo "FAIL: finished counter missing"; cat "$workdir/metrics.txt"; exit 1; }
grep -q '^ecod_cache_hits_total 1$' "$workdir/metrics.txt" || {
	echo "FAIL: result-cache hit not counted"; cat "$workdir/metrics.txt"; exit 1; }
if grep -qE '^ecod_sat_solve_calls_total 0$' "$workdir/metrics.txt"; then
	echo "FAIL: solver counters stayed zero"; cat "$workdir/metrics.txt"; exit 1
fi
grep -q '^ecod_cpu_slots 2$' "$workdir/metrics.txt" || {
	echo "FAIL: cpu-slot gauge missing"; cat "$workdir/metrics.txt"; exit 1; }
grep -q '^ecod_portfolio_races_total' "$workdir/metrics.txt" || {
	echo "FAIL: portfolio race counter missing"; cat "$workdir/metrics.txt"; exit 1; }

# One result file per finished job, written atomically (the writer
# runs just after the terminal state becomes visible, so poll).
found=0
for _ in $(seq 1 50); do
	if ls "$workdir/results/"*.json >/dev/null 2>&1; then found=1; break; fi
	sleep 0.1
done
[ "$found" = 1 ] || { echo "FAIL: no result file persisted"; exit 1; }

# Graceful shutdown: SIGTERM drains and the process exits on its own.
kill -TERM "$server_pid"
wait "$server_pid" || { echo "FAIL: non-zero exit on drain"; exit 1; }
grep -q 'drain complete' "$workdir/ecod.log" || {
	echo "FAIL: drain did not complete"; cat "$workdir/ecod.log"; exit 1; }

echo "PASS: ecod smoke test"
