package ecopatch_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecopatch"
	"ecopatch/internal/eco"
)

func TestPublicAPISolve(t *testing.T) {
	impl, err := ecopatch.ParseNetlistString(`
module top (a, b, f);
input a, b;
output f;
and (f, a, t_0);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ecopatch.ParseNetlistString(`
module top (a, b, f);
input a, b;
output f;
and (f, a, b);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	inst := &ecopatch.Instance{
		Name: "api", Impl: impl, Spec: spec, Weights: ecopatch.NewWeights(),
	}
	res, err := ecopatch.Solve(inst, ecopatch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Verified {
		t.Fatalf("feasible=%v verified=%v", res.Feasible, res.Verified)
	}
	ok, err := ecopatch.VerifyPatch(inst, res.Patch)
	if err != nil || !ok {
		t.Fatalf("VerifyPatch ok=%v err=%v", ok, err)
	}
}

func TestLoadSaveDirRoundTrip(t *testing.T) {
	inst, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
		Name: "io", Seed: 3, Family: ecopatch.FamAdder,
		Size: 3, Targets: 1, Profile: ecopatch.T4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "io")
	if err := inst.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"F.v", "S.v", "weight.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	back, err := ecopatch.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Impl.NumGates() != inst.Impl.NumGates() || back.Spec.NumGates() != inst.Spec.NumGates() {
		t.Fatal("round trip changed gate counts")
	}
	res, err := ecopatch.Solve(back, ecopatch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("round-tripped instance not solvable")
	}
}

func TestBenchSuiteAccessors(t *testing.T) {
	suite := ecopatch.BenchSuite(1)
	if len(suite) != 20 {
		t.Fatalf("suite size %d", len(suite))
	}
	names := make(map[string]bool)
	for _, cfg := range suite {
		if names[cfg.Name] {
			t.Fatalf("duplicate unit %s", cfg.Name)
		}
		names[cfg.Name] = true
		if !strings.HasPrefix(cfg.Name, "unit") {
			t.Fatalf("unexpected unit name %q", cfg.Name)
		}
	}
}

func TestWriteNetlistOutput(t *testing.T) {
	n, err := ecopatch.ParseNetlistString(`
module m (a, f);
input a;
output f;
not (f, a);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ecopatch.WriteNetlist(&sb, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "module m") || !strings.Contains(sb.String(), "not (f, a);") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
}

func TestCompareMinimizeProbe(t *testing.T) {
	inst, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
		Name: "probe", Seed: 11, Family: ecopatch.FamRandom,
		Size: 120, Targets: 1, Profile: ecopatch.T8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := eco.CompareMinimize(inst)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Divisors == 0 {
		t.Fatal("no divisors")
	}
	if cmp.LinearCalls != cmp.Divisors {
		t.Fatalf("linear loop must make exactly N calls: %d vs %d", cmp.LinearCalls, cmp.Divisors)
	}
	if cmp.BisectionCalls >= cmp.LinearCalls && cmp.Divisors > 32 {
		t.Fatalf("bisection (%d calls) should beat linear (%d) at N=%d",
			cmp.BisectionCalls, cmp.LinearCalls, cmp.Divisors)
	}
}
