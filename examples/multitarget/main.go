// Multi-target rectification: an ALU whose specification changed in
// two places at once.
//
// The example generates a synthetic ALU-based ECO unit with two
// target points and walks the Theorem-1 iteration of the paper: the
// engine rectifies one target at a time, universally quantifying the
// not-yet-patched target and substituting finished patches back into
// the miter. The per-target log shows the order and the chosen
// supports.
//
// Run with: go run ./examples/multitarget
package main

import (
	"fmt"
	"log"
	"os"

	"ecopatch"
)

func main() {
	inst, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
		Name:    "alu-eco",
		Seed:    4242,
		Family:  ecopatch.FamALU,
		Size:    6,
		Targets: 2,
		Profile: ecopatch.T5, // distance-aware composed with path-aware costs
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d PIs, %d POs, %d gates (impl), %d gates (spec), targets %v\n",
		len(inst.Impl.Inputs), len(inst.Impl.Outputs),
		inst.Impl.NumGates(), inst.Spec.NumGates(), inst.Impl.Targets())

	opt := ecopatch.DefaultOptions()
	opt.Log = os.Stdout // watch the Theorem-1 iteration
	res, err := ecopatch.Solve(inst, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for i, p := range res.Patches {
		fmt.Printf("step %d — target %s:\n", i+1, p.Target)
		fmt.Printf("  support (%d signals): %v\n", len(p.Support), p.Support)
		fmt.Printf("  cost %d, %d AND gates, %d prime cubes\n", p.Cost, p.Gates, p.Cubes)
	}
	fmt.Printf("\ntotal: cost=%d gates=%d verified=%v in %v\n",
		res.TotalCost, res.TotalGates, res.Verified, res.Elapsed.Round(1e6))
	fmt.Printf("miter cofactor copies used for quantification: %d\n",
		res.Stats.MiterCopies)
	fmt.Printf("2QBF feasibility check used %d expansion copies\n",
		res.Stats.QBFCopies)
}
