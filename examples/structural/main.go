// The SAT-timeout path (§3.6): structural patch computation and the
// CEGAR_min max-flow improvement.
//
// A tiny SAT conflict budget stands in for the paper's solver
// timeouts: the engine abandons the SAT route, takes the cofactor
// M(0,x) of the ECO miter as a patch in terms of primary inputs, and
// then — with CEGAR_min enabled — re-expresses it over a
// minimum-weight cut of internal signals found by max-flow/min-cut.
//
// Run with: go run ./examples/structural
package main

import (
	"fmt"
	"log"

	"ecopatch"
)

func main() {
	gen := func() *ecopatch.Instance {
		inst, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
			Name:    "timeout-demo",
			Seed:    777,
			Family:  ecopatch.FamRandom,
			Size:    260,
			Targets: 2,
			Profile: ecopatch.T1, // PIs expensive, internal signals cheap: cuts pay off
		})
		if err != nil {
			log.Fatal(err)
		}
		return inst
	}

	fmt.Println("── structural patch, PI support only (CEGAR_min off)")
	optPlain := ecopatch.DefaultOptions()
	optPlain.ForceStructural = true
	optPlain.CEGARMin = false
	plain, err := ecopatch.Solve(gen(), optPlain)
	if err != nil {
		log.Fatal(err)
	}
	report(plain)

	fmt.Println("── structural patch + CEGAR_min (max-flow min-cut support)")
	optCM := ecopatch.DefaultOptions()
	optCM.ForceStructural = true
	optCM.CEGARMin = true
	cm, err := ecopatch.Solve(gen(), optCM)
	if err != nil {
		log.Fatal(err)
	}
	report(cm)

	fmt.Printf("CEGAR_min cost improvement: %d -> %d (%.1f%%)\n",
		plain.TotalCost, cm.TotalCost,
		100*(1-float64(cm.TotalCost)/float64(plain.TotalCost)))

	fmt.Println("\n── same instance through the normal flow with a tiny SAT budget")
	optBudget := ecopatch.DefaultOptions()
	optBudget.ConfBudget = 1 // force the timeout path through the real engine
	res, err := ecopatch.Solve(gen(), optBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structurally patched targets: %d of %d, verified=%v\n",
		res.Stats.StructuralFixes, len(res.Patches), res.Verified)
}

func report(r *ecopatch.Result) {
	for _, p := range r.Patches {
		fmt.Printf("  %s: %d support signals, cost=%d, gates=%d\n",
			p.Target, len(p.Support), p.Cost, p.Gates)
	}
	fmt.Printf("  total cost=%d gates=%d verified=%v\n\n", r.TotalCost, r.TotalGates, r.Verified)
}
