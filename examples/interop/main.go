// Interop: move a circuit through every format this repository
// speaks — contest Verilog, ASCII/binary AIGER, BLIF — and prove each
// conversion lossless with the equivalence checker; then run the
// optimization pipeline and SAT sweeping on a redundancy-laden AIG.
//
// Run with: go run ./examples/interop
package main

import (
	"bytes"
	"fmt"
	"log"

	"ecopatch"
	"ecopatch/internal/aig"
	"ecopatch/internal/blif"
	"ecopatch/internal/cec"
	"ecopatch/internal/netlist"
	"ecopatch/internal/synth"
)

func main() {
	// A benchmark ALU as the traveling circuit.
	inst, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
		Name: "demo", Seed: 7, Family: ecopatch.FamALU,
		Size: 4, Targets: 1, Profile: ecopatch.T3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := netlist.ToAIG(inst.Spec)
	if err != nil {
		log.Fatal(err)
	}
	g := res.G
	fmt.Printf("source circuit: %d PIs, %d POs, %d ANDs\n", g.NumPIs(), g.NumPOs(), g.NumAnds())

	check := func(label string, h *aig.AIG) {
		r, err := cec.CheckAIGs(g, h)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-22s %4d ANDs  equivalent=%v\n", label, h.NumAnds(), r.Equivalent)
		if !r.Equivalent {
			log.Fatalf("%s: conversion changed the function", label)
		}
	}

	// ASCII AIGER.
	var aag bytes.Buffer
	if err := aig.WriteASCIIAiger(&aag, g); err != nil {
		log.Fatal(err)
	}
	fromAag, err := aig.ReadAiger(bytes.NewReader(aag.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	check("ascii aiger round trip", fromAag)

	// Binary AIGER.
	var bin bytes.Buffer
	if err := aig.WriteBinaryAiger(&bin, g); err != nil {
		log.Fatal(err)
	}
	fromBin, err := aig.ReadAiger(bytes.NewReader(bin.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	check("binary aiger round trip", fromBin)

	// BLIF.
	var bl bytes.Buffer
	if err := blif.Write(&bl, g, "demo"); err != nil {
		log.Fatal(err)
	}
	fromBlif, err := blif.Read(bytes.NewReader(bl.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	check("blif round trip", fromBlif)

	// Verilog subset.
	nl := netlist.FromAIG(g, "demo")
	back, err := netlist.ToAIG(nl)
	if err != nil {
		log.Fatal(err)
	}
	check("verilog round trip", back.G)

	// Optimization + sweeping on the BLIF-read copy (the per-cube
	// .names expansion leaves redundancy behind).
	fmt.Println()
	opt := synth.Optimize(fromBlif)
	check("balance+refactor", opt)
	swept := cec.Sweep(fromBlif, cec.DefaultSweepOptions())
	check("sat sweeping", swept)
}
