// Cost-aware support selection: the same functional fix under the
// eight contest weight profiles (T1–T8), and a hand-built case where
// the three support algorithms of §3.4 pick measurably different
// supports.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"ecopatch"
)

const implSrc = `
module top (a, b, c, d, f, aux);
input a, b, c, d;
output f, aux;
wire wAnd, wOr, wMix;
and (wAnd, b, c);
or  (wOr, b, c);
xor (wMix, wAnd, d);
and (f, a, t_0);
or  (aux, wMix, wOr);
endmodule
`

const specSrc = `
module top (a, b, c, d, f, aux);
input a, b, c, d;
output f, aux;
wire wAnd, wOr, wMix, wNew;
and (wAnd, b, c);
or  (wOr, b, c);
xor (wMix, wAnd, d);
and (wNew, b, c);
and (f, a, wNew);
or  (aux, wMix, wOr);
endmodule
`

func main() {
	// The true change sets t_0 := b & c. Candidate supports include
	// the inputs {b, c} and the internal signal wAnd == b&c. Which one
	// the engine picks depends entirely on the weights.
	scenarios := []struct {
		name  string
		costs map[string]int
	}{
		{"internal signal cheap", map[string]int{
			"a": 8, "b": 8, "c": 8, "d": 8, "wAnd": 1, "wOr": 9, "wMix": 9, "f": 99, "aux": 99}},
		{"inputs cheap (T1-like)", map[string]int{
			"a": 1, "b": 1, "c": 1, "d": 1, "wAnd": 30, "wOr": 30, "wMix": 30, "f": 99, "aux": 99}},
		{"everything expensive but wOr", map[string]int{
			"a": 50, "b": 50, "c": 50, "d": 50, "wAnd": 40, "wOr": 2, "wMix": 50, "f": 99, "aux": 99}},
	}

	for _, sc := range scenarios {
		impl, err := ecopatch.ParseNetlistString(implSrc)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := ecopatch.ParseNetlistString(specSrc)
		if err != nil {
			log.Fatal(err)
		}
		w := ecopatch.NewWeights()
		for k, v := range sc.costs {
			w.Set(k, v)
		}
		inst := &ecopatch.Instance{Name: sc.name, Impl: impl, Spec: spec, Weights: w}

		fmt.Printf("── %s\n", sc.name)
		for _, algo := range []struct {
			label string
			a     ecopatch.SupportAlgo
		}{
			{"analyze_final       ", ecopatch.SupportAnalyzeFinal},
			{"minimize_assumptions", ecopatch.SupportMinimize},
			{"SAT_prune (exact)   ", ecopatch.SupportExact},
		} {
			opt := ecopatch.DefaultOptions()
			opt.Support = algo.a
			res, err := ecopatch.Solve(inst, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s support=%-14v cost=%-4d gates=%d verified=%v\n",
				algo.label, res.Patches[0].Support, res.TotalCost,
				res.TotalGates, res.Verified)
		}
	}

	// The same structural change under the synthetic contest profiles.
	fmt.Println("\n── one ALU ECO under the eight contest weight profiles")
	for p := ecopatch.T1; p <= ecopatch.T8; p++ {
		inst, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
			Name: "profile-demo", Seed: 99, Family: ecopatch.FamALU,
			Size: 5, Targets: 1, Profile: p,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ecopatch.Solve(inst, ecopatch.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v: support=%v cost=%d verified=%v\n",
			p, res.Patches[0].Support, res.TotalCost, res.Verified)
	}
}
