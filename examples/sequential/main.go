// Sequential ECO: fix a counter whose increment condition changed.
//
// The implementation is a 2-bit counter whose second bit's toggle
// condition was cut out (target t_0); the new specification counts
// only while an enable is high. The engine reduces both designs to
// their transition netlists (latch outputs become pseudo inputs),
// computes the patch combinationally, and re-validates the patched
// sequential circuit by bounded equivalence over 8 time frames.
//
// Run with: go run ./examples/sequential
package main

import (
	"fmt"
	"log"
	"os"

	"ecopatch"
)

const implSrc = `
module ctr (en, q0o, q1o);
input en;
output q0o, q1o;
wire q0, q1, d0, d1;
dff (q0, d0);
dff (q1, d1);
xor (d0, q0, en);
xor (d1, q1, t_0);
buf (q0o, q0);
buf (q1o, q1);
endmodule
`

const specSrc = `
module ctr (en, q0o, q1o);
input en;
output q0o, q1o;
wire q0, q1, d0, d1, tgl1;
dff (q0, d0);
dff (q1, d1);
xor (d0, q0, en);
and (tgl1, q0, en);
xor (d1, q1, tgl1);
buf (q0o, q0);
buf (q1o, q1);
endmodule
`

func main() {
	impl, err := ecopatch.ParseNetlistString(implSrc)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := ecopatch.ParseNetlistString(specSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("implementation sequential:", ecopatch.IsSequential(impl))

	w := ecopatch.NewWeights()
	for sig, cost := range map[string]int{
		"en": 5, "q0": 5, "q1": 5, "d0": 5, "d1": 5, "q0o": 8, "q1o": 8,
	} {
		w.Set(sig, cost)
	}
	inst := &ecopatch.Instance{Name: "counter", Impl: impl, Spec: spec, Weights: w}

	res, err := ecopatch.SolveSequential(inst, ecopatch.DefaultOptions(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible=%v verified=%v (plus 8-frame bounded check)\n",
		res.Feasible, res.Verified)
	for _, p := range res.Patches {
		fmt.Printf("patch %s: support=%v cost=%d gates=%d\n",
			p.Target, p.Support, p.Cost, p.Gates)
	}
	fmt.Println("--------------------------------")
	if err := ecopatch.WriteNetlist(os.Stdout, res.Patch); err != nil {
		log.Fatal(err)
	}
}
