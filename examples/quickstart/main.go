// Quickstart: fix a one-gate specification change.
//
// The old implementation computed f = a & (b | c). The specification
// changed the inner function to b ^ c. The implementation netlist has
// the inner gate cut out — its readers now see the free target point
// t_0 — and the ECO engine must synthesize a patch for t_0 from
// existing signals.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"ecopatch"
)

const implSrc = `
module top (a, b, c, f);
input a, b, c;
output f;
and (f, a, t_0);
endmodule
`

const specSrc = `
module top (a, b, c, f);
input a, b, c;
output f;
wire w;
xor (w, b, c);
and (f, a, w);
endmodule
`

func main() {
	impl, err := ecopatch.ParseNetlistString(implSrc)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := ecopatch.ParseNetlistString(specSrc)
	if err != nil {
		log.Fatal(err)
	}
	weights := ecopatch.NewWeights()
	for _, sig := range []string{"a", "b", "c"} {
		weights.Set(sig, 10)
	}

	inst := &ecopatch.Instance{
		Name:    "quickstart",
		Impl:    impl,
		Spec:    spec,
		Weights: weights,
	}

	res, err := ecopatch.Solve(inst, ecopatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatal("the target point cannot rectify this change")
	}

	fmt.Printf("feasible: %v, verified: %v\n", res.Feasible, res.Verified)
	for _, p := range res.Patches {
		fmt.Printf("patch for %s: support=%v cost=%d gates=%d cubes=%d\n",
			p.Target, p.Support, p.Cost, p.Gates, p.Cubes)
	}
	fmt.Println(strings.Repeat("-", 40))
	if err := ecopatch.WriteNetlist(os.Stdout, res.Patch); err != nil {
		log.Fatal(err)
	}

	// Independent verification: splice the patch back into the
	// implementation and re-check equivalence.
	ok, err := ecopatch.VerifyPatch(inst, res.Patch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("independent verification:", ok)
}
