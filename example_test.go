package ecopatch_test

import (
	"fmt"
	"log"
	"strings"

	"ecopatch"
)

// ExampleSolve fixes a one-gate specification change: the inner
// function of f = a & (b|c) changed to b^c, and the implementation's
// target point t_0 must be re-synthesized.
func ExampleSolve() {
	impl, err := ecopatch.ParseNetlistString(`
module top (a, b, c, f);
input a, b, c;
output f;
and (f, a, t_0);
endmodule`)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := ecopatch.ParseNetlistString(`
module top (a, b, c, f);
input a, b, c;
output f;
wire w;
xor (w, b, c);
and (f, a, w);
endmodule`)
	if err != nil {
		log.Fatal(err)
	}
	inst := &ecopatch.Instance{
		Name: "quickstart", Impl: impl, Spec: spec,
		Weights: ecopatch.NewWeights(),
	}
	res, err := ecopatch.Solve(inst, ecopatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", res.Feasible)
	fmt.Println("verified:", res.Verified)
	fmt.Println("patch for:", res.Patches[0].Target)
	fmt.Println("support:", res.Patches[0].Support)
	// Output:
	// feasible: true
	// verified: true
	// patch for: t_0
	// support: [b c]
}

// ExampleVerifyPatch validates a hand-written patch module against an
// instance.
func ExampleVerifyPatch() {
	impl, _ := ecopatch.ParseNetlistString(`
module top (a, b, f);
input a, b;
output f;
and (f, a, t_0);
endmodule`)
	spec, _ := ecopatch.ParseNetlistString(`
module top (a, b, f);
input a, b;
output f;
and (f, a, b);
endmodule`)
	inst := &ecopatch.Instance{
		Name: "v", Impl: impl, Spec: spec, Weights: ecopatch.NewWeights(),
	}
	good, _ := ecopatch.ParseNetlistString(`
module patch (b, t_0);
input b;
output t_0;
buf (t_0, b);
endmodule`)
	ok, err := ecopatch.VerifyPatch(inst, good)
	fmt.Println(ok, err)

	bad, _ := ecopatch.ParseNetlistString(`
module patch (b, t_0);
input b;
output t_0;
not (t_0, b);
endmodule`)
	ok, err = ecopatch.VerifyPatch(inst, bad)
	fmt.Println(ok, err)
	// Output:
	// true <nil>
	// false <nil>
}

// ExampleGenerateBench creates a synthetic benchmark unit and solves
// it end to end.
func ExampleGenerateBench() {
	inst, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
		Name: "demo", Seed: 42, Family: ecopatch.FamAdder,
		Size: 4, Targets: 1, Profile: ecopatch.T1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ecopatch.Solve(inst, ecopatch.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("targets:", len(res.Patches))
	fmt.Println("verified:", res.Verified)
	// Output:
	// targets: 1
	// verified: true
}

// ExampleWriteNetlist shows the contest text format.
func ExampleWriteNetlist() {
	n, _ := ecopatch.ParseNetlistString(`
module m (a, b, f);
input a, b;
output f;
nand (f, a, b);
endmodule`)
	var sb strings.Builder
	_ = ecopatch.WriteNetlist(&sb, n)
	fmt.Print(sb.String())
	// Output:
	// module m (a, b, f);
	// input a, b;
	// output f;
	// nand (f, a, b);
	// endmodule
}
