module ecopatch

go 1.22
