package ecopatch_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildTools compiles the command-line tools once per test run.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("CLI smoke test is POSIX-path based")
	}
	dir := t.TempDir()
	bins := make(map[string]string, len(names))
	for _, n := range names {
		bin := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+n)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", n, err, out)
		}
		bins[n] = bin
	}
	return bins
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestCLIEndToEnd drives the shipped tools the way a user would:
// generate a unit, solve it, verify the equivalences, convert formats.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t, "ecogen", "eco", "ceccheck", "aigconv")
	work := t.TempDir()

	// 1. Generate one benchmark unit.
	out, err := run(t, bins["ecogen"], "-unit", "unit4", "-out", work)
	if err != nil {
		t.Fatalf("ecogen: %v\n%s", err, out)
	}
	unitDir := filepath.Join(work, "unit4")
	for _, f := range []string{"F.v", "S.v", "weight.txt"} {
		if _, err := os.Stat(filepath.Join(unitDir, f)); err != nil {
			t.Fatalf("ecogen did not write %s: %v", f, err)
		}
	}

	// 2. Solve it; the tool exits nonzero on verification failure.
	patch := filepath.Join(work, "patch.v")
	out, err = run(t, bins["eco"], "-dir", unitDir, "-o", patch)
	if err != nil {
		t.Fatalf("eco: %v\n%s", err, out)
	}
	if !strings.Contains(out, "verified=true") {
		t.Fatalf("eco output lacks verification:\n%s", out)
	}

	// 3. JSON mode agrees.
	out, err = run(t, bins["eco"], "-dir", unitDir, "-json", "-o", filepath.Join(work, "p2.v"))
	if err != nil {
		t.Fatalf("eco -json: %v\n%s", err, out)
	}
	if !strings.Contains(out, `"verified": true`) {
		t.Fatalf("json report wrong:\n%s", out)
	}

	// 4. ceccheck: F.v is not equivalent to S.v (targets free), but
	// S.v is equivalent to itself.
	out, err = run(t, bins["ceccheck"], filepath.Join(unitDir, "S.v"), filepath.Join(unitDir, "S.v"))
	if err != nil || !strings.Contains(out, "EQUIVALENT") {
		t.Fatalf("ceccheck self: %v\n%s", err, out)
	}

	// 5. aigconv round trip S.v -> aag -> blif -> v, then CEC.
	aag := filepath.Join(work, "s.aag")
	blif := filepath.Join(work, "s.blif")
	v2 := filepath.Join(work, "s2.v")
	for i, step := range [][2]string{
		{filepath.Join(unitDir, "S.v"), aag},
		{aag, blif},
		{blif, v2},
	} {
		args := []string{step[0], step[1]}
		if i == 0 {
			args = append([]string{"-opt", "-stats"}, args...)
		}
		out, err = run(t, bins["aigconv"], args...)
		if err != nil {
			t.Fatalf("aigconv %s -> %s: %v\n%s", step[0], step[1], err, out)
		}
	}
	out, err = run(t, bins["ceccheck"], filepath.Join(unitDir, "S.v"), v2)
	if err != nil || !strings.Contains(out, "EQUIVALENT") {
		t.Fatalf("converted netlist not equivalent: %v\n%s", err, out)
	}

	// 6. Structural mode and alternative support algorithms still
	// verify on the same unit.
	for _, extra := range [][]string{
		{"-support", "final"},
		{"-support", "exact"},
		{"-structural"},
		{"-patch", "interp"},
		{"-no-window"},
	} {
		args := append([]string{"-dir", unitDir, "-o", filepath.Join(work, "px.v")}, extra...)
		out, err = run(t, bins["eco"], args...)
		if err != nil {
			t.Fatalf("eco %v: %v\n%s", extra, err, out)
		}
	}
}
