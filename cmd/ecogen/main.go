// Command ecogen materializes the synthetic replica of the ICCAD-2017
// CAD Contest Problem A benchmark suite to disk: 20 unit directories,
// each with F.v (old implementation with free t_* points), S.v (new
// specification) and weight.txt.
//
// Usage:
//
//	ecogen [-scale N] [-out benchmarks] [-unit unit7]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ecopatch"
	"ecopatch/internal/bench"
)

func main() {
	var (
		scale = flag.Int("scale", 1, "circuit size multiplier (1 = laptop-fast)")
		out   = flag.String("out", "benchmarks", "output directory")
		unit  = flag.String("unit", "", "generate only this unit")
	)
	flag.Parse()

	for _, cfg := range bench.Suite(*scale) {
		if *unit != "" && cfg.Name != *unit {
			continue
		}
		inst, err := ecopatch.GenerateBench(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecogen: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		dir := filepath.Join(*out, cfg.Name)
		if err := inst.SaveDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "ecogen: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %-7s targets=%-3d gatesF=%-6d gatesS=%-6d profile=%s -> %s\n",
			cfg.Name, cfg.Family, cfg.Targets, inst.Impl.NumGates(), inst.Spec.NumGates(),
			cfg.Profile, dir)
	}
}
