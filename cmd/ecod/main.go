// Command ecod is the ECO-patch service daemon and its client.
//
// Server:
//
//	ecod serve [-addr :8080] [-workers N] [-cpu-slots N] [-queue N]
//	           [-max-jobs N] [-default-timeout 0] [-max-timeout 0]
//	           [-results-dir DIR] [-data-dir DIR] [-drain-grace 10s]
//	           [-cache-entries 256] [-prep]
//
// The daemon exposes POST /v1/jobs, GET /v1/jobs[/{id}],
// DELETE /v1/jobs/{id}, /healthz and /metrics; SIGTERM/SIGINT drain
// it gracefully (admission closes, queued jobs are cancelled,
// in-flight solves get the grace period before interruption).
//
// Client:
//
//	ecod submit  -server URL (-dir DIR | -unit unitK [-scale N])
//	             [-name S] [-support minimize|final|exact]
//	             [-patch cubes|interp] [-budget N] [-p N] [-prep]
//	             [-timeout 30s] [-wait] [-o patch.v]
//	ecod status  -server URL ID
//	ecod wait    -server URL ID [-poll 200ms] [-o patch.v]
//	ecod cancel  -server URL ID
//	ecod list    -server URL [-state STATE] [-limit N]
//	ecod metrics -server URL
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecopatch/internal/atomicio"
	"ecopatch/internal/bench"
	"ecopatch/internal/eco"
	"ecopatch/internal/netlist"
	"ecopatch/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status", "wait", "cancel":
		err = cmdJobOp(os.Args[1], os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ecod: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecod:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ecod serve   [flags]           run the daemon
  ecod submit  [flags]           submit a job
  ecod status  -server URL ID    fetch job status
  ecod wait    -server URL ID    poll a job to completion
  ecod cancel  -server URL ID    cancel a job
  ecod list    -server URL       list jobs
  ecod metrics -server URL       dump /metrics
run 'ecod <subcommand> -h' for flags`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("ecod serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "solve workers (0 = GOMAXPROCS)")
		cpuSlots   = fs.Int("cpu-slots", 0, "CPU slots shared by all jobs; bounds workers x intra-job threads (0 = max(GOMAXPROCS, workers))")
		queueCap   = fs.Int("queue", 64, "admission queue capacity")
		maxJobs    = fs.Int("max-jobs", 1024, "retained jobs before oldest finished are evicted")
		defTimeout = fs.Duration("default-timeout", 0, "deadline for jobs that set none (0 = unbounded)")
		maxTimeout = fs.Duration("max-timeout", 0, "clamp on per-job deadlines (0 = no clamp)")
		resultsDir = fs.String("results-dir", "", "persist finished job results as <dir>/<id>.json")
		dataDir    = fs.String("data-dir", "", "crash-safe persistence: replay solve cache and job history from this directory on boot")
		grace      = fs.Duration("drain-grace", 10*time.Second, "time in-flight solves get to finish on SIGTERM before interruption")
		cacheEnt   = fs.Int("cache-entries", 256, "content-addressed result cache + shared solve cache size (0 disables)")
		prep       = fs.Bool("prep", false, "enable CNF preprocessing for jobs that do not set it (skipped for interp-patch jobs)")
		sim        = fs.Bool("sim", false, "enable the bit-parallel simulation layer for jobs that do not set it")
		rewrite    = fs.Bool("rewrite", false, "enable DAG-aware miter rewriting for jobs that do not set it")
	)
	fs.Parse(args)

	logger := log.New(os.Stderr, "ecod ", log.LstdFlags)
	if *resultsDir != "" {
		if err := os.MkdirAll(*resultsDir, 0o755); err != nil {
			return err
		}
	}
	srv, err := server.New(server.Config{
		Workers:           *workers,
		CPUSlots:          *cpuSlots,
		QueueCap:          *queueCap,
		MaxJobs:           *maxJobs,
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
		ResultsDir:        *resultsDir,
		DataDir:           *dataDir,
		CacheEntries:      *cacheEnt,
		DefaultPreprocess: *prep,
		DefaultSim:        *sim,
		DefaultRewrite:    *rewrite,
		Log:               logger,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining")
	// Drain the solve pool first so /v1/jobs answers 503 (and status
	// polls keep working) while in-flight work winds down, then close
	// the listener.
	srv.Drain(*grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}

func clientFlags(fs *flag.FlagSet) *string {
	return fs.String("server", envOr("ECOD_SERVER", "http://127.0.0.1:8080"), "ecod server base URL (or $ECOD_SERVER)")
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("ecod submit", flag.ExitOnError)
	var (
		base    = clientFlags(fs)
		dir     = fs.String("dir", "", "instance directory (F.v, S.v, weight.txt)")
		unit    = fs.String("unit", "", "benchmark-suite unit to generate and submit (e.g. unit7)")
		scale   = fs.Int("scale", 1, "suite scale factor for -unit")
		name    = fs.String("name", "", "job name (default: instance name)")
		support = fs.String("support", "", "support algorithm: final, minimize, exact")
		patchA  = fs.String("patch", "", "patch computation: cubes, interp")
		budget  = fs.Int64("budget", 0, "SAT conflict budget per call (0 = unlimited)")
		par     = fs.Int("p", 0, "intra-solve parallelism for this job (0 = serial daemon default)")
		prep    = fs.Bool("prep", false, "enable CNF preprocessing for this job (incompatible with -patch interp)")
		sim     = fs.Bool("sim", false, "enable the bit-parallel simulation layer for this job")
		rewrite = fs.Bool("rewrite", false, "enable DAG-aware miter rewriting for this job")
		timeout = fs.Duration("timeout", 0, "per-job deadline (0 = server default)")
		wait    = fs.Bool("wait", false, "poll the job to completion and print the result")
		out     = fs.String("o", "", "with -wait: write the patch netlist here ('-' for stdout)")
		retries = fs.Int("retries", 3, "retries after a 429 shed, honoring the server's Retry-After")
	)
	fs.Parse(args)

	inst, err := loadInstance(*dir, *unit, *scale)
	if err != nil {
		return err
	}
	req, err := requestFromInstance(inst)
	if err != nil {
		return err
	}
	if *name != "" {
		req.Name = *name
	}
	req.Options = server.JobOptions{
		Support:     *support,
		Patch:       *patchA,
		ConfBudget:  *budget,
		TimeoutSec:  timeout.Seconds(),
		Parallelism: *par,
	}
	if *prep {
		// Only an explicit -prep is sent; absent lets the server
		// default (-prep on serve) decide.
		req.Options.Preprocess = prep
	}
	if *sim {
		// Same tri-state convention as -prep.
		req.Options.Sim = sim
	}
	if *rewrite {
		// Same tri-state convention as -prep.
		req.Options.Rewrite = rewrite
	}

	c := &server.Client{Base: *base, MaxRetries: *retries}
	ctx := context.Background()
	st, err := c.Submit(ctx, req)
	if err != nil {
		var ae *server.APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			return fmt.Errorf("%w (retry after %v)", err, ae.RetryAfter)
		}
		return err
	}
	if !*wait {
		fmt.Println(st.ID)
		return nil
	}
	st, err = c.Wait(ctx, st.ID, 0)
	if err != nil {
		return err
	}
	return printTerminal(st, *out)
}

// loadInstance reads -dir or generates -unit.
func loadInstance(dir, unit string, scale int) (*eco.Instance, error) {
	switch {
	case dir != "" && unit != "":
		return nil, fmt.Errorf("-dir and -unit are mutually exclusive")
	case dir != "":
		return eco.LoadDir(dir)
	case unit != "":
		cfg, err := bench.ConfigByName(scale, unit)
		if err != nil {
			return nil, err
		}
		return bench.Generate(cfg)
	default:
		return nil, fmt.Errorf("one of -dir or -unit is required")
	}
}

// requestFromInstance serializes an instance into the wire form.
func requestFromInstance(inst *eco.Instance) (server.JobRequest, error) {
	var impl, spec, weights strings.Builder
	if err := netlist.Write(&impl, inst.Impl); err != nil {
		return server.JobRequest{}, err
	}
	if err := netlist.Write(&spec, inst.Spec); err != nil {
		return server.JobRequest{}, err
	}
	if inst.Weights != nil {
		if err := netlist.WriteWeights(&weights, inst.Weights); err != nil {
			return server.JobRequest{}, err
		}
	}
	return server.JobRequest{
		Name:    inst.Name,
		Impl:    impl.String(),
		Spec:    spec.String(),
		Weights: weights.String(),
	}, nil
}

// printTerminal renders a terminal job status, optionally extracting
// the patch, and fails for non-done terminal states.
func printTerminal(st server.JobStatus, out string) error {
	if out != "" && st.Result != nil && st.Result.Patch != "" {
		if out == "-" {
			fmt.Print(st.Result.Patch)
		} else if err := atomicio.WriteFileBytes(out, []byte(st.Result.Patch)); err != nil {
			return err
		}
		// Keep the JSON readable when the patch went elsewhere.
		st.Result.Patch = ""
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		return err
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return nil
}

func cmdJobOp(op string, args []string) error {
	fs := flag.NewFlagSet("ecod "+op, flag.ExitOnError)
	base := clientFlags(fs)
	poll := fs.Duration("poll", 200*time.Millisecond, "poll interval (wait)")
	out := fs.String("o", "", "write the patch netlist here (wait; '-' for stdout)")
	retries := fs.Int("retries", 3, "retries after a 429 shed, honoring the server's Retry-After")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("ecod %s: exactly one job ID required", op)
	}
	id := fs.Arg(0)
	c := &server.Client{Base: *base, MaxRetries: *retries}
	ctx := context.Background()
	var (
		st  server.JobStatus
		err error
	)
	switch op {
	case "status":
		st, err = c.Status(ctx, id)
	case "cancel":
		st, err = c.Cancel(ctx, id)
	case "wait":
		st, err = c.Wait(ctx, id, *poll)
		if err == nil {
			return printTerminal(st, *out)
		}
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("ecod list", flag.ExitOnError)
	base := clientFlags(fs)
	state := fs.String("state", "", "keep only jobs in this state (queued, running, done, failed, cancelled, timeout)")
	limit := fs.Int("limit", 0, "keep only the most recently submitted N jobs (0 = all)")
	fs.Parse(args)
	c := &server.Client{Base: *base}
	jobs, err := c.List(context.Background(), *state, *limit)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-18s %-10s %-20s %s\n", "ID", "STATE", "NAME", "QUEUED")
	for _, j := range jobs {
		fmt.Printf("%-18s %-10s %-20s %s\n", j.ID, j.State, j.Name, j.QueuedAt.Format(time.RFC3339))
	}
	return nil
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("ecod metrics", flag.ExitOnError)
	base := clientFlags(fs)
	fs.Parse(args)
	c := &server.Client{Base: *base}
	text, err := c.Metrics(context.Background())
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
