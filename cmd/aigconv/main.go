// Command aigconv converts combinational circuits between the formats
// this repository understands: the contest's structural-Verilog
// subset (.v), ASCII and binary AIGER (.aag/.aig), and BLIF (.blif).
// Formats are inferred from file extensions.
//
// Usage:
//
//	aigconv input.v output.aag
//	aigconv design.blif design.aig
//	aigconv circuit.aag circuit.v
//
// Optionally runs the full optimization pipeline (cut-based NPN
// rewriting, balance, cleanup — aig.Optimize) in between:
//
//	aigconv -opt input.v output.aig
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ecopatch/internal/aig"
	"ecopatch/internal/blif"
	"ecopatch/internal/netlist"
)

func main() {
	opt := flag.Bool("opt", false, "run the rewrite+balance+cleanup pipeline (aig.Optimize) before writing")
	stats := flag.Bool("stats", false, "print node counts")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: aigconv [-opt] [-stats] <in.{v,aag,aig,blif}> <out.{v,aag,aig,blif}>")
		os.Exit(2)
	}
	in, out := flag.Arg(0), flag.Arg(1)

	g, err := read(in)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("read    %s: %d PIs, %d POs, %d ANDs\n", in, g.NumPIs(), g.NumPOs(), g.NumAnds())
	}
	if *opt {
		g = aig.Optimize(g)
		if *stats {
			fmt.Printf("optimized: %d ANDs, depth %d\n", g.NumAnds(), maxLevel(g))
		}
	}
	if err := write(out, g); err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Printf("wrote   %s\n", out)
	}
}

func maxLevel(g *aig.AIG) int {
	m := 0
	for _, l := range g.Levels() {
		if l > m {
			m = l
		}
	}
	return m
}

func read(path string) (*aig.AIG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext(path) {
	case ".v":
		n, err := netlist.Parse(f)
		if err != nil {
			return nil, err
		}
		res, err := netlist.ToAIG(n)
		if err != nil {
			return nil, err
		}
		if len(res.Targets) > 0 {
			fmt.Fprintf(os.Stderr, "aigconv: note: treating target points %v as inputs\n", res.Targets)
		}
		return res.G, nil
	case ".aag", ".aig":
		return aig.ReadAiger(f)
	case ".blif":
		return blif.Read(f)
	}
	return nil, fmt.Errorf("aigconv: unknown input format %q", ext(path))
}

func write(path string, g *aig.AIG) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base := strings.TrimSuffix(filepath.Base(path), ext(path))
	switch ext(path) {
	case ".v":
		return netlist.Write(f, netlist.FromAIG(g, base))
	case ".aag":
		return aig.WriteASCIIAiger(f, g)
	case ".aig":
		return aig.WriteBinaryAiger(f, g)
	case ".blif":
		return blif.Write(f, g, base)
	}
	return fmt.Errorf("aigconv: unknown output format %q", ext(path))
}

func ext(path string) string { return strings.ToLower(filepath.Ext(path)) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aigconv:", err)
	os.Exit(1)
}
