// Command ceccheck decides combinational equivalence of two netlists
// in the contest's structural-Verilog subset (matching PIs/POs by
// position) and prints a counterexample when they differ.
//
// Usage:
//
//	ceccheck a.v b.v
package main

import (
	"flag"
	"fmt"
	"os"

	"ecopatch"
	"ecopatch/internal/aig"
	"ecopatch/internal/cec"
	"ecopatch/internal/netlist"
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ceccheck a.v b.v")
		os.Exit(2)
	}
	g1 := loadAIG(flag.Arg(0))
	g2 := loadAIG(flag.Arg(1))
	res, err := cec.CheckAIGs(g1, g2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceccheck:", err)
		os.Exit(1)
	}
	if res.Equivalent {
		fmt.Println("EQUIVALENT")
		return
	}
	fmt.Printf("NOT EQUIVALENT (output %d differs)\n", res.FailingOutput)
	fmt.Print("counterexample:")
	for i, v := range res.Counterexample {
		b := 0
		if v {
			b = 1
		}
		fmt.Printf(" %s=%d", g1.PIName(i), b)
	}
	fmt.Println()
	os.Exit(1)
}

func loadAIG(path string) *aig.AIG {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceccheck:", err)
		os.Exit(1)
	}
	defer f.Close()
	n, err := ecopatch.ParseNetlist(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceccheck:", err)
		os.Exit(1)
	}
	res, err := netlist.ToAIG(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ceccheck:", err)
		os.Exit(1)
	}
	return res.G
}
