// Command eco computes ECO patch functions for one instance: it reads
// the old implementation F.v (with free t_* target points), the new
// specification S.v and the signal weight file, runs the engine of
// "Efficient Computation of ECO Patch Functions" (DAC 2018), verifies
// the result and writes the patch module.
//
// Usage:
//
//	eco -dir unit7 [-o patch.v] [-support minimize|final|exact]
//	    [-patch cubes|interp] [-structural] [-no-window] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ecopatch"
	"ecopatch/internal/aig"
	"ecopatch/internal/blif"
	"ecopatch/internal/netlist"
)

// jsonReport is the machine-readable result of a run (-json flag).
type jsonReport struct {
	Instance   string             `json:"instance"`
	Feasible   bool               `json:"feasible"`
	Verified   bool               `json:"verified"`
	TotalCost  int                `json:"total_cost"`
	TotalGates int                `json:"total_gates"`
	ElapsedSec float64            `json:"elapsed_sec"`
	TimedOut   bool               `json:"timed_out,omitempty"`
	Targets    []jsonTargetReport `json:"targets"`
	PatchFile  string             `json:"patch_file,omitempty"`
	Patch      string             `json:"patch,omitempty"`
}

type jsonTargetReport struct {
	Target     string   `json:"target"`
	Support    []string `json:"support"`
	Cost       int      `json:"cost"`
	Gates      int      `json:"gates"`
	Cubes      int      `json:"cubes"`
	Structural bool     `json:"structural"`
}

func main() {
	var (
		dir        = flag.String("dir", "", "instance directory containing F.v, S.v, weight.txt")
		out        = flag.String("o", "patch.v", "output patch file ('-' for stdout; .v/.blif/.aag/.aig by extension)")
		support    = flag.String("support", "minimize", "support algorithm: final, minimize, exact")
		patchAlgo  = flag.String("patch", "cubes", "patch computation: cubes, interp")
		structural = flag.Bool("structural", false, "force the structural (§3.6) path")
		noWindow   = flag.Bool("no-window", false, "disable structural pruning (§3.3)")
		noCegar    = flag.Bool("no-cegarmin", false, "disable CEGAR_min for structural patches")
		budget     = flag.Int64("budget", 0, "SAT conflict budget per call (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "wall-clock deadline; on expiry the engine degrades to structural patches (0 = none)")
		verbose    = flag.Bool("v", false, "log engine progress to stderr")
		jsonOut    = flag.Bool("json", false, "emit a JSON report on stdout instead of text")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	inst, err := ecopatch.LoadDir(*dir)
	if err != nil {
		fatal(err)
	}
	opt := ecopatch.DefaultOptions()
	switch *support {
	case "final":
		opt.Support = ecopatch.SupportAnalyzeFinal
	case "minimize":
		opt.Support = ecopatch.SupportMinimize
	case "exact":
		opt.Support = ecopatch.SupportExact
	default:
		fatal(fmt.Errorf("unknown -support %q", *support))
	}
	switch *patchAlgo {
	case "cubes":
		opt.Patch = ecopatch.PatchCubeEnum
	case "interp":
		opt.Patch = ecopatch.PatchInterpolation
	default:
		fatal(fmt.Errorf("unknown -patch %q", *patchAlgo))
	}
	opt.ForceStructural = *structural
	opt.Window = !*noWindow
	opt.CEGARMin = !*noCegar
	opt.ConfBudget = *budget
	opt.Timeout = *timeout
	if *verbose {
		opt.Log = os.Stderr
	}

	res, err := ecopatch.Solve(inst, opt)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emitJSON(inst, res, *out)
		if !res.Feasible || !res.Verified {
			os.Exit(1)
		}
		return
	}
	if !res.Feasible {
		fmt.Println("INFEASIBLE: the target set cannot rectify the implementation")
		os.Exit(1)
	}
	fmt.Printf("instance  %s: %d inputs, %d outputs, %d targets\n",
		inst.Name, len(inst.Impl.Inputs), len(inst.Impl.Outputs), len(inst.Impl.Targets()))
	for _, p := range res.Patches {
		kind := "sat"
		if p.Structural {
			kind = "structural"
		}
		fmt.Printf("target    %-6s support=%v cost=%d gates=%d (%s)\n",
			p.Target, p.Support, p.Cost, p.Gates, kind)
	}
	fmt.Printf("total     cost=%d gates=%d verified=%v time=%v\n",
		res.TotalCost, res.TotalGates, res.Verified, res.Elapsed.Round(1e6))
	if res.TimedOut {
		fmt.Println("WARNING: deadline expired; result is the degraded (structural) fallback")
	}
	if !res.Verified {
		fmt.Println("WARNING: patch failed verification")
		os.Exit(1)
	}

	if *out == "-" {
		if err := ecopatch.WriteNetlist(os.Stdout, res.Patch); err != nil {
			fatal(err)
		}
		return
	}
	if err := writePatch(*out, res.Patch); err != nil {
		fatal(err)
	}
	fmt.Printf("patch     written to %s\n", *out)
}

// writePatch writes the patch module in the format implied by the
// file extension (.v default; .blif/.aag/.aig via the interop
// packages).
func writePatch(path string, patch *ecopatch.Netlist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".blif", ".aag", ".aig":
		res, err := netlist.ToAIG(patch)
		if err != nil {
			return err
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".blif":
			return blif.Write(f, res.G, "patch")
		case ".aag":
			return aig.WriteASCIIAiger(f, res.G)
		default:
			return aig.WriteBinaryAiger(f, res.G)
		}
	default:
		return ecopatch.WriteNetlist(f, patch)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eco:", err)
	os.Exit(1)
}

// emitJSON writes the machine-readable report and, unless out is "-",
// also writes the patch file.
func emitJSON(inst *ecopatch.Instance, res *ecopatch.Result, out string) {
	rep := jsonReport{
		Instance:   inst.Name,
		Feasible:   res.Feasible,
		Verified:   res.Verified,
		TotalCost:  res.TotalCost,
		TotalGates: res.TotalGates,
		ElapsedSec: res.Elapsed.Seconds(),
		TimedOut:   res.TimedOut,
	}
	for _, p := range res.Patches {
		rep.Targets = append(rep.Targets, jsonTargetReport{
			Target: p.Target, Support: p.Support, Cost: p.Cost,
			Gates: p.Gates, Cubes: p.Cubes, Structural: p.Structural,
		})
	}
	if res.Patch != nil {
		var sb strings.Builder
		if err := ecopatch.WriteNetlist(&sb, res.Patch); err == nil {
			rep.Patch = sb.String()
		}
		if out != "-" && res.Verified {
			if f, err := os.Create(out); err == nil {
				_ = ecopatch.WriteNetlist(f, res.Patch)
				f.Close()
				rep.PatchFile = out
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}
