// Command ecobench regenerates the paper's evaluation on the
// synthetic contest-suite replica.
//
// Modes:
//
//	table1   (default) — the three algorithm columns of Table 1 over
//	         all 20 units, plus the geomean-ratio summary row;
//	copies   — experiment E6: ECO-miter copies needed for multi-target
//	         structural patches, full 2^k expansion vs the QBF
//	         move-guided construction of §3.6.2;
//	mincalls — experiment E5: SAT calls spent by minimize_assumptions
//	         (bisection) vs the naive linear loop, over a divisor sweep;
//	patchcmp — experiment E7: cube enumeration vs interpolation patch
//	         sizes over the suite.
//
// Usage:
//
//	ecobench [-mode table1|copies|mincalls|patchcmp] [-scale N]
//	         [-unit unitK] [-units unitK,unitL,...]
//	         [-modes baseline,minassume,exact]
//	         [-j N] [-p N] [-timeout 30s] [-cache N] [-cache-file f] [-warm]
//	         [-prep] [-sim] [-rewrite] [-json report.json]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ecopatch/internal/atomicio"
	"ecopatch/internal/bench"
	"ecopatch/internal/cache"
)

func main() {
	// realMain holds the body so deferred profile writers run before
	// the process exits, even on error paths.
	os.Exit(realMain())
}

func realMain() int {
	var (
		mode       = flag.String("mode", "table1", "experiment: table1, copies, mincalls, patchcmp, all")
		scale      = flag.Int("scale", 1, "circuit size multiplier")
		unit       = flag.String("unit", "", "restrict table1 to one unit")
		units      = flag.String("units", "", "restrict table1 to a comma-separated list of units (e.g. unit3,unit7)")
		modesStr   = flag.String("modes", strings.Join(bench.Modes, ","), "table1 algorithm columns")
		jobs       = flag.Int("j", 1, "worker goroutines for the table1 sweep")
		par        = flag.Int("p", 1, "intra-solve parallelism per cell (SAT portfolio + sharded verification); 1 = serial deterministic engine")
		timeout    = flag.Duration("timeout", 0, "per-(unit,mode) deadline for table1 cells (0 = none)")
		cacheEnt   = flag.Int("cache", 0, "attach a shared solve/window cache of N entries to the table1 sweep (0 = off)")
		cacheFile  = flag.String("cache-file", "", "persist the solve cache to this file: load it before the table1 sweep, save it after (implies -cache when unset)")
		warm       = flag.Bool("warm", false, "run table1 twice against one cache (cold then warm) and report the speedup")
		prep       = flag.Bool("prep", false, "enable CNF preprocessing (BVE, subsumption, vivification) on every captured solve")
		sim        = flag.Bool("sim", false, "enable the bit-parallel simulation layer (pattern-bank SAT-call elision + divisor pruning)")
		rewrite    = flag.Bool("rewrite", false, "enable DAG-aware rewriting of every miter before it reaches the solvers")
		jsonPath   = flag.String("json", "", "also write the table1 report as JSON to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecobench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ecobench:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecobench:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ecobench:", err)
		}
	}()

	modes, err := parseModes(*modesStr)
	if err == nil {
		switch *mode {
		case "all":
			for _, m := range []struct {
				title string
				run   func() error
			}{
				{"Table 1", func() error {
					return runTable1(*scale, parseUnits(*unit, *units), modes, *jobs, *par, *timeout, *cacheEnt, *cacheFile, *warm, *prep, *sim, *rewrite, *jsonPath)
				}},
				{"E5: minimize_assumptions SAT calls (§3.4.1)", func() error { return bench.RunMinCalls(os.Stdout) }},
				{"E6: miter copies for structural multi-target (§3.6.2)", func() error { return bench.RunCopies(*scale, os.Stdout) }},
				{"E7: cube enumeration vs interpolation (§3.5)", func() error { return bench.RunPatchCompare(*scale, os.Stdout) }},
			} {
				fmt.Printf("==== %s ====\n", m.title)
				if err = m.run(); err != nil {
					break
				}
				fmt.Println()
			}
		case "table1":
			err = runTable1(*scale, parseUnits(*unit, *units), modes, *jobs, *par, *timeout, *cacheEnt, *cacheFile, *warm, *prep, *sim, *rewrite, *jsonPath)
		case "copies":
			err = bench.RunCopies(*scale, os.Stdout)
		case "mincalls":
			err = bench.RunMinCalls(os.Stdout)
		case "patchcmp":
			err = bench.RunPatchCompare(*scale, os.Stdout)
		default:
			err = fmt.Errorf("unknown -mode %q", *mode)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecobench:", err)
		return 1
	}
	return 0
}

// parseModes splits the -modes flag, trimming whitespace, dropping
// empty entries (so trailing commas are harmless), and rejecting any
// name that is not a known Table-1 column.
func parseModes(s string) ([]string, error) {
	known := make(map[string]bool, len(bench.Modes))
	for _, m := range bench.Modes {
		known[m] = true
	}
	var modes []string
	for _, part := range strings.Split(s, ",") {
		m := strings.TrimSpace(part)
		if m == "" {
			continue
		}
		if !known[m] {
			return nil, fmt.Errorf("unknown mode %q in -modes (valid: %s)",
				m, strings.Join(bench.Modes, ", "))
		}
		modes = append(modes, m)
	}
	if len(modes) == 0 {
		return nil, fmt.Errorf("-modes selects no columns (valid: %s)",
			strings.Join(bench.Modes, ", "))
	}
	return modes, nil
}

// parseUnits merges the -unit and -units selections into one list,
// splitting -units on commas and dropping empty entries. Unknown unit
// names are rejected later by the sweep (ConfigByName).
func parseUnits(unit, units string) []string {
	var out []string
	if unit != "" {
		out = append(out, unit)
	}
	for _, part := range strings.Split(units, ",") {
		if u := strings.TrimSpace(part); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func runTable1(scale int, units []string, modes []string, jobs, par int, timeout time.Duration, cacheEnt int, cacheFile string, warm, prep, sim, rewrite bool, jsonPath string) error {
	opts := bench.RunOptions{
		Scale: scale, Modes: modes, Jobs: jobs, Timeout: timeout,
		Parallelism: par, CacheEntries: cacheEnt, Preprocess: prep, Sim: sim,
		Rewrite: rewrite,
	}
	opts.Units = units
	if cacheFile != "" {
		// Persistent cache: build the shared cache here so it can be
		// warmed from disk before the sweep and snapshotted after.
		if opts.CacheEntries <= 0 {
			opts.CacheEntries = 4096
		}
		opts.Cache = cache.New(opts.CacheEntries)
		restored, skipped, err := bench.LoadCacheFile(cacheFile, opts.Cache)
		if err != nil {
			return fmt.Errorf("-cache-file load: %w", err)
		}
		fmt.Printf("cache-file: restored %d entries from %s (%d skipped)\n",
			restored, cacheFile, skipped)
	}
	var rep bench.JSONReport
	if warm {
		run, err := bench.RunTable1Warm(opts, os.Stdout)
		if err != nil {
			return err
		}
		rep = bench.NewWarmJSONReport(opts, modes, run)
	} else {
		rows, err := bench.RunTable1With(opts, os.Stdout)
		if err != nil {
			return err
		}
		rep = bench.NewJSONReport(opts, modes, rows)
	}
	if cacheFile != "" {
		saved, err := bench.SaveCacheFile(cacheFile, opts.Cache)
		if err != nil {
			return fmt.Errorf("-cache-file save: %w", err)
		}
		fmt.Printf("cache-file: saved %d entries to %s\n", saved, cacheFile)
	}
	if jsonPath == "" {
		return nil
	}
	// Atomic write: an interrupted run must never leave a truncated
	// report where trend tooling would read it.
	return atomicio.WriteFile(jsonPath, func(w io.Writer) error {
		return bench.WriteJSON(w, rep)
	})
}
