// Command ecobench regenerates the paper's evaluation on the
// synthetic contest-suite replica.
//
// Modes:
//
//	table1   (default) — the three algorithm columns of Table 1 over
//	         all 20 units, plus the geomean-ratio summary row;
//	copies   — experiment E6: ECO-miter copies needed for multi-target
//	         structural patches, full 2^k expansion vs the QBF
//	         move-guided construction of §3.6.2;
//	mincalls — experiment E5: SAT calls spent by minimize_assumptions
//	         (bisection) vs the naive linear loop, over a divisor sweep;
//	patchcmp — experiment E7: cube enumeration vs interpolation patch
//	         sizes over the suite.
//
// Usage:
//
//	ecobench [-mode table1|copies|mincalls|patchcmp] [-scale N]
//	         [-unit unitK] [-modes baseline,minassume,exact]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ecopatch/internal/bench"
)

func main() {
	var (
		mode     = flag.String("mode", "table1", "experiment: table1, copies, mincalls, patchcmp, all")
		scale    = flag.Int("scale", 1, "circuit size multiplier")
		unit     = flag.String("unit", "", "restrict table1 to one unit")
		modesStr = flag.String("modes", strings.Join(bench.Modes, ","), "table1 algorithm columns")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "all":
		for _, m := range []struct {
			title string
			run   func() error
		}{
			{"Table 1", func() error { return runTable1(*scale, *unit, strings.Split(*modesStr, ",")) }},
			{"E5: minimize_assumptions SAT calls (§3.4.1)", func() error { return bench.RunMinCalls(os.Stdout) }},
			{"E6: miter copies for structural multi-target (§3.6.2)", func() error { return bench.RunCopies(*scale, os.Stdout) }},
			{"E7: cube enumeration vs interpolation (§3.5)", func() error { return bench.RunPatchCompare(*scale, os.Stdout) }},
		} {
			fmt.Printf("==== %s ====\n", m.title)
			if err = m.run(); err != nil {
				break
			}
			fmt.Println()
		}
	case "table1":
		err = runTable1(*scale, *unit, strings.Split(*modesStr, ","))
	case "copies":
		err = bench.RunCopies(*scale, os.Stdout)
	case "mincalls":
		err = bench.RunMinCalls(os.Stdout)
	case "patchcmp":
		err = bench.RunPatchCompare(*scale, os.Stdout)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecobench:", err)
		os.Exit(1)
	}
}

func runTable1(scale int, unit string, modes []string) error {
	if unit == "" {
		_, err := bench.RunTable1(scale, modes, os.Stdout)
		return err
	}
	cfg, err := bench.ConfigByName(scale, unit)
	if err != nil {
		return err
	}
	row := bench.Table1Row{}
	for _, m := range modes {
		r, err := bench.RunUnit(cfg, m)
		if err != nil {
			return err
		}
		if row.Unit == "" {
			row = r
		} else {
			row.Results[m] = r.Results[m]
		}
	}
	bench.PrintTable1(os.Stdout, []bench.Table1Row{row}, modes)
	return nil
}
