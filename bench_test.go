// Benchmark harness regenerating the paper's evaluation artifacts.
//
// Table 1 (the paper's only quantitative table) is covered by one
// benchmark per algorithm column; each iteration solves the full
// 20-unit synthetic contest-suite replica and reports the table's
// headline metrics (geomean cost/gate ratios are printed by
// cmd/ecobench; here the absolute sums become benchmark metrics).
// The paper's inline quantitative claims are covered by E5–E9:
//
//	E5 BenchmarkMinimizeAssumptionsVsLinear — §3.4.1 log(N) vs N calls
//	E6 BenchmarkQBFMoveGuidedCopies         — §3.6.2 miter-copy count
//	E7 BenchmarkCubeEnumVsInterpolation     — §3.5 vs prior work [15]
//	E8 BenchmarkLastGaspAblation            — §3.4.1 last-gasp step
//	E9 BenchmarkWindowingAblation           — §3.3 structural pruning
//
// Run everything with: go test -bench=. -benchmem
package ecopatch_test

import (
	"testing"

	"ecopatch"
	"ecopatch/internal/bench"
	"ecopatch/internal/eco"
)

// runSuite solves every suite unit in one Table-1 mode and returns
// summed cost, gates and the number of verified cells.
func runSuite(b *testing.B, mode string) (cost, gates, verified int) {
	b.Helper()
	for _, cfg := range bench.Suite(1) {
		row, err := bench.RunUnit(cfg, mode)
		if err != nil {
			b.Fatal(err)
		}
		r := row.Results[mode]
		cost += r.Cost
		gates += r.PatchGates
		if r.Verified {
			verified++
		}
	}
	return cost, gates, verified
}

func benchTable1(b *testing.B, mode string) {
	var cost, gates, verified int
	for i := 0; i < b.N; i++ {
		cost, gates, verified = runSuite(b, mode)
	}
	if verified != len(bench.Suite(1)) {
		b.Fatalf("only %d/20 units verified in mode %s", verified, mode)
	}
	b.ReportMetric(float64(cost), "total-cost")
	b.ReportMetric(float64(gates), "total-patch-gates")
}

// BenchmarkTable1Baseline reproduces Table 1 columns 7–9
// ("w/o minimize_assumptions": raw analyze_final cores).
func BenchmarkTable1Baseline(b *testing.B) { benchTable1(b, bench.ModeBaseline) }

// BenchmarkTable1MinAssume reproduces Table 1 columns 10–12
// ("w/ minimize_assumptions", the contest-winning configuration).
func BenchmarkTable1MinAssume(b *testing.B) { benchTable1(b, bench.ModeMinAssume) }

// BenchmarkTable1Exact reproduces Table 1 columns 13–15
// (SAT_prune + CEGAR_min).
func BenchmarkTable1Exact(b *testing.B) { benchTable1(b, bench.ModeExact) }

// BenchmarkMinimizeAssumptionsVsLinear quantifies §3.4.1: the
// bisection procedure needs O(max{log N, M}) SAT calls where the
// naive loop needs O(N).
func BenchmarkMinimizeAssumptionsVsLinear(b *testing.B) {
	inst := func() *ecopatch.Instance {
		in, err := ecopatch.GenerateBench(ecopatch.BenchConfig{
			Name: "sweep", Seed: 9480, Family: ecopatch.FamRandom,
			Size: 480, Targets: 1, Profile: ecopatch.T8,
		})
		if err != nil {
			b.Fatal(err)
		}
		return in
	}
	var cmp *eco.MinimizeComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = eco.CompareMinimize(inst())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cmp.Divisors), "N-divisors")
	b.ReportMetric(float64(cmp.BisectionCalls), "bisection-calls")
	b.ReportMetric(float64(cmp.LinearCalls), "linear-calls")
}

// BenchmarkQBFMoveGuidedCopies quantifies §3.6.2 on the 8-target
// unit17: ECO-miter cofactor copies for the structural multi-target
// construction, full 2^k expansion vs the QBF countermove guidance
// (the paper reports 255 vs 40 for 8 targets).
func BenchmarkQBFMoveGuidedCopies(b *testing.B) {
	cfg, err := bench.ConfigByName(1, "unit17")
	if err != nil {
		b.Fatal(err)
	}
	run := func(maxExpand int) *eco.Result {
		inst, err := bench.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		opt := eco.DefaultOptions()
		opt.ForceStructural = true
		opt.MaxQuantExpand = maxExpand
		res, err := eco.Solve(inst, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatal("structural patch not verified")
		}
		return res
	}
	var full, guided *eco.Result
	for i := 0; i < b.N; i++ {
		full = run(32)  // always expand fully
		guided = run(1) // countermoves beyond one remaining target
	}
	b.ReportMetric(float64(full.Stats.MiterCopies), "full-copies")
	b.ReportMetric(float64(guided.Stats.MiterCopies), "move-guided-copies")
}

// BenchmarkCubeEnumVsInterpolation compares the paper's §3.5 patch
// computation against the prior-work interpolation baseline on the
// 12-target unit14.
func BenchmarkCubeEnumVsInterpolation(b *testing.B) {
	cfg, err := bench.ConfigByName(1, "unit14")
	if err != nil {
		b.Fatal(err)
	}
	run := func(m eco.PatchMethod) *eco.Result {
		inst, err := bench.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		opt := eco.DefaultOptions()
		opt.Patch = m
		res, err := eco.Solve(inst, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatalf("method %v not verified", m)
		}
		return res
	}
	var cubes, itp *eco.Result
	for i := 0; i < b.N; i++ {
		cubes = run(eco.PatchCubeEnum)
		itp = run(eco.PatchInterpolation)
	}
	b.ReportMetric(float64(cubes.TotalGates), "cube-gates")
	b.ReportMetric(float64(itp.TotalGates), "interp-gates")
}

// BenchmarkLastGaspAblation measures the greedy divisor-replacement
// step of §3.4.1 over the multi-target units.
func BenchmarkLastGaspAblation(b *testing.B) {
	units := []string{"unit5", "unit9", "unit14", "unit17", "unit20"}
	run := func(lastGasp bool) int {
		total := 0
		for _, u := range units {
			cfg, err := bench.ConfigByName(1, u)
			if err != nil {
				b.Fatal(err)
			}
			inst, err := bench.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			opt := eco.DefaultOptions()
			opt.LastGasp = lastGasp
			res, err := eco.Solve(inst, opt)
			if err != nil {
				b.Fatal(err)
			}
			total += res.TotalCost
		}
		return total
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		without = run(false)
		with = run(true)
	}
	b.ReportMetric(float64(without), "cost-no-lastgasp")
	b.ReportMetric(float64(with), "cost-lastgasp")
}

// BenchmarkWindowingAblation measures §3.3 structural pruning: the
// divisor count and solve time with and without the window.
func BenchmarkWindowingAblation(b *testing.B) {
	cfg, err := bench.ConfigByName(1, "unit3")
	if err != nil {
		b.Fatal(err)
	}
	run := func(window bool) *eco.Result {
		inst, err := bench.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		opt := eco.DefaultOptions()
		opt.Window = window
		res, err := eco.Solve(inst, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatal("not verified")
		}
		return res
	}
	var with, without *eco.Result
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(float64(with.Stats.Divisors), "divisors-window")
	b.ReportMetric(float64(without.Stats.Divisors), "divisors-full")
	b.ReportMetric(with.Elapsed.Seconds()*1000, "ms-window")
	b.ReportMetric(without.Elapsed.Seconds()*1000, "ms-full")
}
