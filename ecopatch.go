// Package ecopatch computes Engineering Change Order (ECO) patch
// functions for combinational netlists, reproducing the SAT-based
// engine of "Efficient Computation of ECO Patch Functions" (DAC 2018).
//
// Given an old implementation whose target points t_0, t_1, ... are
// free inputs, a new specification with the same interface, and a
// per-signal resource cost, Solve computes patch functions over a
// minimized-cost support of existing signals such that the patched
// implementation is combinationally equivalent to the specification:
//
//	inst, err := ecopatch.LoadDir("unit7")        // F.v, S.v, weight.txt
//	res, err := ecopatch.Solve(inst, ecopatch.DefaultOptions())
//	fmt.Println(res.TotalCost, res.Verified)
//	ecopatch.WriteNetlist(os.Stdout, res.Patch)   // module patch(...)
//
// Three support-minimization algorithms are provided (§3.4 of the
// paper): the analyze_final baseline, minimize_assumptions
// (Algorithm 1, the 2017 ICCAD CAD Contest winner configuration), and
// the exact minimum-cost SAT_prune. Patch functions are computed by
// prime-cube enumeration (§3.5) or Craig interpolation (the
// prior-work baseline), with a structural cofactor fallback plus
// max-flow CEGAR_min support reduction when SAT budgets run out
// (§3.6). See DESIGN.md for the full system inventory.
package ecopatch

import (
	"context"
	"io"

	"ecopatch/internal/bench"
	"ecopatch/internal/eco"
	"ecopatch/internal/netlist"
	"ecopatch/internal/seq"
)

// Core types, re-exported from the engine.
type (
	// Instance is one ECO problem: implementation, specification and
	// signal weights.
	Instance = eco.Instance
	// Options configures the engine; start from DefaultOptions.
	Options = eco.Options
	// Result is the outcome of Solve.
	Result = eco.Result
	// TargetPatch describes the patch computed for one target.
	TargetPatch = eco.TargetPatch
	// Stats carries engine counters.
	Stats = eco.Stats
	// SupportAlgo selects the support-minimization algorithm.
	SupportAlgo = eco.SupportAlgo
	// PatchMethod selects cube enumeration or interpolation.
	PatchMethod = eco.PatchMethod

	// Netlist is a gate-level structural-Verilog module.
	Netlist = netlist.Netlist
	// Weights maps signal names to resource costs.
	Weights = netlist.Weights

	// BenchConfig describes a synthetic benchmark unit.
	BenchConfig = bench.Config
	// BenchFamily selects a base circuit generator.
	BenchFamily = bench.Family
	// WeightProfile is one of the contest's weight distributions T1–T8.
	WeightProfile = bench.WeightProfile
)

// Benchmark base-circuit families.
const (
	FamAdder      = bench.FamAdder
	FamALU        = bench.FamALU
	FamComparator = bench.FamComparator
	FamParity     = bench.FamParity
	FamRandom     = bench.FamRandom
	FamC17        = bench.FamC17
	FamMultiplier = bench.FamMultiplier
	FamShifter    = bench.FamShifter
	FamDecoder    = bench.FamDecoder
)

// Contest weight profiles (§4.1 of the paper).
const (
	T1 = bench.T1
	T2 = bench.T2
	T3 = bench.T3
	T4 = bench.T4
	T5 = bench.T5
	T6 = bench.T6
	T7 = bench.T7
	T8 = bench.T8
)

// Support-minimization algorithms (§3.4).
const (
	// SupportAnalyzeFinal uses the raw solver core (baseline).
	SupportAnalyzeFinal = eco.SupportAnalyzeFinal
	// SupportMinimize runs minimize_assumptions (Algorithm 1).
	SupportMinimize = eco.SupportMinimize
	// SupportExact runs the exact minimum-cost SAT_prune.
	SupportExact = eco.SupportExact
)

// Patch-function computation methods (§3.5 and prior work).
const (
	// PatchCubeEnum enumerates prime cubes with the SAT solver.
	PatchCubeEnum = eco.PatchCubeEnum
	// PatchInterpolation derives the patch as a Craig interpolant.
	PatchInterpolation = eco.PatchInterpolation
)

// DefaultOptions returns the paper's best-flow configuration.
func DefaultOptions() Options { return eco.DefaultOptions() }

// Solve runs the full ECO flow: feasibility check, structural
// pruning, per-target support minimization and patch computation,
// and final verification.
func Solve(inst *Instance, opt Options) (*Result, error) {
	return eco.Solve(inst, opt)
}

// SolveContext is Solve under a context: when the context's deadline
// fires (or it is cancelled), every active SAT solver is interrupted
// and the engine degrades to its structural fallback, returning the
// partial result with Result.TimedOut set. Options.Timeout arms the
// same machinery without a caller-supplied context.
func SolveContext(ctx context.Context, inst *Instance, opt Options) (*Result, error) {
	return eco.SolveContext(ctx, inst, opt)
}

// LoadDir reads an instance from a directory holding F.v, S.v and
// weight.txt (the ICCAD-2017 contest layout).
func LoadDir(dir string) (*Instance, error) { return eco.LoadDir(dir) }

// VerifyPatch splices a patch module into the implementation and
// checks combinational equivalence against the specification.
func VerifyPatch(inst *Instance, patch *Netlist) (bool, error) {
	return eco.VerifyPatch(inst, patch)
}

// ParseNetlist reads one module in the contest's structural-Verilog
// subset.
func ParseNetlist(r io.Reader) (*Netlist, error) { return netlist.Parse(r) }

// ParseNetlistString parses a module held in a string.
func ParseNetlistString(src string) (*Netlist, error) {
	return netlist.ParseString(src)
}

// WriteNetlist emits a module in the contest's structural-Verilog
// subset.
func WriteNetlist(w io.Writer, n *Netlist) error { return netlist.Write(w, n) }

// NewWeights returns an empty weight table (unlisted signals cost 1).
func NewWeights() *Weights { return netlist.NewWeights() }

// ParseWeights reads "<signal> <cost>" lines.
func ParseWeights(r io.Reader) (*Weights, error) { return netlist.ParseWeights(r) }

// GenerateBench builds a feasible-by-construction synthetic ECO
// instance (see internal/bench for the construction and the weight
// profiles T1–T8).
func GenerateBench(cfg BenchConfig) (*Instance, error) { return bench.Generate(cfg) }

// BenchSuite returns the 20-unit replica of the contest benchmark
// suite at the given size scale.
func BenchSuite(scale int) []BenchConfig { return bench.Suite(scale) }

// SolveSequential runs the sequential ECO flow on netlists containing
// dff gates: both designs are reduced to their transition netlists
// (latch outputs as pseudo inputs, latch inputs as pseudo outputs —
// the state-blind reduction the paper's sequential follow-up [10]
// generalizes), the combinational engine computes the patches, and
// the patched sequential design is re-validated by bounded
// equivalence over verifyFrames time frames from the all-zero state.
func SolveSequential(inst *Instance, opt Options, verifyFrames int) (*Result, error) {
	return seq.Solve(inst, opt, verifyFrames)
}

// SolveSequentialContext is SolveSequential under a context (see
// SolveContext for the deadline semantics).
func SolveSequentialContext(ctx context.Context, inst *Instance, opt Options, verifyFrames int) (*Result, error) {
	return seq.SolveContext(ctx, inst, opt, verifyFrames)
}

// IsSequential reports whether a netlist contains dff gates.
func IsSequential(n *Netlist) bool { return seq.IsSequential(n) }
